/**
 * @file
 * Sampled-simulation accuracy: speedup vs measured error bounds.
 *
 * This is the repo's "Figure 9" extension to the paper's evaluation:
 * the interval-sampled fast path (DESIGN.md section 11) is only
 * admissible if its error against the cycle-accurate oracle is
 * measured, not assumed. For each requested gap length the fig3
 * ground-truth grid runs in both modes through
 * exp::sweep::compareModes, and the bench reports
 *
 *  - the grid wall-clock speedup of sampled over exact,
 *  - per-cell total-time error and (the headline) slowdown-prediction
 *    error — how far sampled T(f)/T(f0) ratios land from exact ones,
 *  - per-predictor slowdown error envelopes, sampled-fed vs exact-fed,
 *    so the error *sampling adds* is separated from the predictors'
 *    inherent model error.
 *
 * Every measured configuration appends one dvfs-sweep-bench-v1 record
 * (mode="sampled") to BENCH_sweep.json. Error metrics are
 * deterministic — repeats reproduce them bit-for-bit; only wall times
 * move — so CI can gate hard on them.
 *
 * Usage: fig9_sampling_accuracy [--benchmarks=4] [--seeds=1]
 *          [--gaps=980] [--detail-us=30] [--startup-us=60]
 *          [--workers=N] [--repeat=1] [--json=BENCH_sweep.json]
 *          [--fail-err-pct=X] [--fail-speedup=X]
 *          [--expect-sampled-fingerprint=0x...] [--progress]
 *
 * --gaps is a comma-separated list of fast-forward gap lengths in
 * microseconds; each is measured with the same detail/startup windows
 * (a window/gap-ratio sweep). --repeat measures each configuration N
 * times, reports minimum walls, and fails if any repeat's digest (in
 * either mode) deviates. --fail-err-pct / --fail-speedup gate every
 * measured configuration on mean |slowdown error| / grid speedup;
 * --expect-sampled-fingerprint pins the first configuration's sampled
 * digest (CI runs a single gap, so "first" is "the default").
 */

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/sweep/differential.hh"
#include "exp/table.hh"

using namespace dvfs;

namespace {

/** Parse a comma-separated list of microsecond values. */
std::vector<long>
parseGapList(const std::string &csv)
{
    std::vector<long> us;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        us.push_back(std::stol(csv.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return us;
}

/** Per-predictor envelopes as a JSON array for the trajectory row. */
std::string
predictorsJson(const exp::sweep::ModeComparison &cmp)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < cmp.predictors.size(); ++i) {
        const auto &p = cmp.predictors[i];
        os << (i ? "," : "") << "{\"predictor\":\"" << p.predictor
           << "\",\"mean_abs_pct\":" << p.meanAbsPct
           << ",\"max_abs_pct\":" << p.maxAbsPct
           << ",\"mean_abs_pct_exact_fed\":" << p.meanAbsPctExactFed
           << ",\"max_abs_pct_exact_fed\":" << p.maxAbsPctExactFed
           << ",\"samples\":" << p.samples << "}";
    }
    os << "]";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("fig9_sampling_accuracy",
                        "sampled-vs-exact error bounds and speedup");
    args.add("benchmarks", "N",
             "workloads from the DaCapo suite (default 4)")
        .add("seeds", "N", "replicate seeds per workload (default 1)")
        .add("gaps", "CSV",
             "fast-forward gap lengths in us (default 980)")
        .addWorkers()
        .addSampling()
        .addRepeat()
        .addJson()
        .add("fail-err-pct", "X",
             "fail if mean |slowdown err| exceeds X percent")
        .add("fail-speedup", "X",
             "fail if grid speedup falls below X")
        .add("expect-sampled-fingerprint", "0x...",
             "pin the first configuration's sampled digest")
        .addBool("progress", "progress/ETA lines on stderr");
    args.parse(argc, argv);

    const auto n_bench =
        static_cast<std::size_t>(args.getInt("benchmarks", 4));
    const auto n_seeds = static_cast<std::size_t>(args.getInt("seeds", 1));
    const std::string json_path = args.get("json", "BENCH_sweep.json");
    const bool progress = args.has("progress");
    const unsigned workers = bench::sweepWorkers(args);
    const auto repeat =
        static_cast<unsigned>(std::max(1L, args.getInt("repeat", 1)));
    const double fail_err = args.getDouble("fail-err-pct", 0.0);
    const double fail_speedup = args.getDouble("fail-speedup", 0.0);
    const std::string expect_fp = args.get("expect-sampled-fingerprint");

    const sim::SamplingConfig base = bench::samplingFromArgs(args);
    const std::vector<long> gaps_us = parseGapList(args.get("gaps", "980"));

    exp::sweep::SweepSpec spec = bench::fig3GridSpec(n_bench);
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, n_seeds);

    std::cout << "fig9_sampling_accuracy: " << spec.workloads.size()
              << " benchmarks x " << spec.frequencies.size()
              << " frequencies x " << spec.seeds.size() << " seeds, "
              << "detail=" << base.detailWindow / kTicksPerUs
              << "us startup=" << base.startupDetail / kTicksPerUs
              << "us, workers=" << workers << ", repeat=" << repeat
              << "\n\n";

    exp::Table table({"gap us", "cov %", "speedup", "time err %",
                      "slowdown err %", "pred err %", "exact-fed %"});
    std::vector<exp::sweep::ModeComparison> results;
    bool repeats_ok = true;

    for (long gap_us : gaps_us) {
        sim::SamplingConfig cfg = base;
        cfg.gapWindow = static_cast<Tick>(gap_us) * kTicksPerUs;

        exp::sweep::ModeComparison best;
        for (unsigned r = 0; r < repeat; ++r) {
            auto cmp =
                exp::sweep::compareModes(spec, cfg, workers, progress);
            if (r == 0) {
                best = std::move(cmp);
                continue;
            }
            if (cmp.exactDigest != best.exactDigest ||
                cmp.sampledDigest != best.sampledDigest) {
                std::cerr << "fig9_sampling_accuracy: digest drift "
                             "across repeats at gap=" << gap_us
                          << "us\n";
                repeats_ok = false;
            }
            best.exactWallSec =
                std::min(best.exactWallSec, cmp.exactWallSec);
            best.sampledWallSec =
                std::min(best.sampledWallSec, cmp.sampledWallSec);
        }

        const double cov = best.sampleTotals.coverage() * 100.0;
        table.addRow(
            {std::to_string(gap_us), exp::Table::fmt(cov, 1),
             exp::Table::fmt(best.speedup(), 1),
             exp::Table::fmt(best.meanAbsTimeErrPct, 2) + " / " +
                 exp::Table::fmt(best.maxAbsTimeErrPct, 2),
             exp::Table::fmt(best.meanAbsSlowdownErrPct, 2) + " / " +
                 exp::Table::fmt(best.maxAbsSlowdownErrPct, 2),
             exp::Table::fmt(best.meanPredictorErrPct(), 2) + " / " +
                 exp::Table::fmt(best.maxPredictorErrPct(), 2),
             exp::Table::fmt(
                 best.predictors.empty()
                     ? 0.0
                     : [&] {
                           double s = 0.0;
                           for (const auto &p : best.predictors)
                               s += p.meanAbsPctExactFed;
                           return s / static_cast<double>(
                                          best.predictors.size());
                       }(),
                 2)});

        bench::SweepJsonRecord rec(
            "fig9_sampling_accuracy",
            "gap=" + std::to_string(gap_us) + "us detail=" +
                std::to_string(base.detailWindow / kTicksPerUs) + "us");
        rec.add("mode", "sampled")
            .add("workers", static_cast<std::uint64_t>(workers))
            .add("cells", static_cast<std::uint64_t>(spec.cellCount()))
            .add("repeat", static_cast<std::uint64_t>(repeat))
            .add("startup_us",
                 static_cast<std::uint64_t>(cfg.startupDetail /
                                            kTicksPerUs))
            .add("detail_us",
                 static_cast<std::uint64_t>(cfg.detailWindow /
                                            kTicksPerUs))
            .add("gap_us",
                 static_cast<std::uint64_t>(cfg.gapWindow / kTicksPerUs))
            .add("detail_coverage_pct", cov)
            .add("exact_wall_ms", best.exactWallSec * 1000.0)
            .add("sampled_wall_ms", best.sampledWallSec * 1000.0)
            .add("cells_per_sec",
                 best.sampledWallSec > 0.0
                     ? static_cast<double>(spec.cellCount()) /
                           best.sampledWallSec
                     : 0.0)
            .add("speedup_vs_exact", best.speedup())
            .add("mean_abs_time_err_pct", best.meanAbsTimeErrPct)
            .add("max_abs_time_err_pct", best.maxAbsTimeErrPct)
            .add("mean_abs_slowdown_err_pct", best.meanAbsSlowdownErrPct)
            .add("max_abs_slowdown_err_pct", best.maxAbsSlowdownErrPct)
            .add("slowdown_samples",
                 static_cast<std::uint64_t>(best.slowdownSamples))
            .add("mean_predictor_err_pct", best.meanPredictorErrPct())
            .add("max_predictor_err_pct", best.maxPredictorErrPct())
            .add("ff_actions", best.sampleTotals.ffActions)
            .add("detail_actions", best.sampleTotals.detailActions)
            .add("ff_fallbacks", best.sampleTotals.ffFallbacks)
            .addHex("exact_fingerprint", best.exactDigest)
            .addHex("sampled_fingerprint", best.sampledDigest)
            .addRaw("predictors", predictorsJson(best));
        rec.appendTo(json_path);

        results.push_back(std::move(best));
    }

    table.print(std::cout);
    std::cout << "\nappended " << results.size() << " records to "
              << json_path << "\n";

    // Per-predictor envelopes for the first (default) configuration:
    // the sampled-fed column is the end-to-end error bound, the
    // exact-fed column the predictor's inherent error on this grid.
    const exp::sweep::ModeComparison &head = results.front();
    std::cout << "\npredictor slowdown-error envelopes (gap="
              << gaps_us.front() << "us):\n";
    exp::Table ptab({"predictor", "sampled mean %", "sampled max %",
                     "exact-fed mean %", "exact-fed max %", "samples"});
    for (const auto &p : head.predictors)
        ptab.addRow({p.predictor, exp::Table::fmt(p.meanAbsPct, 2),
                     exp::Table::fmt(p.maxAbsPct, 2),
                     exp::Table::fmt(p.meanAbsPctExactFed, 2),
                     exp::Table::fmt(p.maxAbsPctExactFed, 2),
                     std::to_string(p.samples)});
    ptab.print(std::cout);

    char fps[80];
    std::snprintf(fps, sizeof(fps),
                  "\nfingerprints: exact=0x%016llx sampled=0x%016llx\n",
                  static_cast<unsigned long long>(head.exactDigest),
                  static_cast<unsigned long long>(head.sampledDigest));
    std::cout << fps;

    bool failed = !repeats_ok;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &cmp = results[i];
        if (fail_err > 0.0 && cmp.meanAbsSlowdownErrPct > fail_err) {
            std::cerr << "fig9_sampling_accuracy: gap="
                      << gaps_us[i] << "us mean |slowdown err| "
                      << cmp.meanAbsSlowdownErrPct
                      << "% exceeds the --fail-err-pct=" << fail_err
                      << " bound\n";
            failed = true;
        }
        if (fail_speedup > 0.0 && cmp.speedup() < fail_speedup) {
            std::cerr << "fig9_sampling_accuracy: gap=" << gaps_us[i]
                      << "us speedup " << cmp.speedup()
                      << "x below the --fail-speedup=" << fail_speedup
                      << " bound\n";
            failed = true;
        }
    }
    if (!expect_fp.empty()) {
        const std::uint64_t want = std::stoull(expect_fp, nullptr, 16);
        if (head.sampledDigest != want) {
            std::cerr << "fig9_sampling_accuracy: sampled fingerprint "
                      << std::hex << head.sampledDigest
                      << " does not match expected " << want << std::dec
                      << " — the sampled fast path drifted\n";
            failed = true;
        } else {
            std::cout <<
                "sampled fingerprint matches "
                "--expect-sampled-fingerprint\n";
        }
    }
    if (failed)
        return 1;
    std::cout << "all gates passed\n";
    return 0;
}
