/**
 * @file
 * Figure 6 reproduction: energy savings under the DEP+BURST-driven
 * energy manager for user-specified slowdown thresholds of 5% and 10%.
 *
 * For each benchmark: run once pinned at the highest frequency
 * (baseline time and energy), then run under the manager at each
 * threshold; report achieved slowdown and energy savings. Paper
 * reference: memory-intensive average savings of 13% (5% threshold)
 * and 19% (10% threshold), with achieved slowdowns near the targets.
 *
 * Usage: fig6_energy_manager [--only=<name>] [--quantum-us=50]
 *                            [--thresholds=0.05,0.10]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    const Tick quantum = static_cast<Tick>(args.getInt("quantum-us", 50)) *
                         kTicksPerUs;

    std::vector<double> thresholds;
    {
        std::stringstream ss(args.get("thresholds", "0.05,0.10"));
        std::string item;
        while (std::getline(ss, item, ','))
            thresholds.push_back(std::stod(item));
    }

    auto table_vf = power::VfTable::haswell();

    std::cout << "Figure 6: energy manager (DEP+BURST, quantum "
              << ticksToUs(quantum) << " us scaled = "
              << ticksToUs(quantum) / 10.0 / 100.0 * 1000.0
              << " ms at paper scale, hold-off 1)\n\n";

    std::vector<std::string> headers = {"benchmark", "type"};
    for (double th : thresholds) {
        headers.push_back(exp::Table::pct(th, 0) + " slowdown");
        headers.push_back(exp::Table::pct(th, 0) + " energy saved");
        headers.push_back(exp::Table::pct(th, 0) + " avg GHz");
    }
    exp::Table table(headers);

    std::vector<std::vector<double>> mem_sav(thresholds.size());
    std::vector<std::vector<double>> cpu_sav(thresholds.size());

    for (const auto &params : wl::dacapoSuite()) {
        if (!only.empty() && params.name != only)
            continue;

        auto baseline = exp::runFixed(params, table_vf.highest());

        std::vector<std::string> row = {params.name,
                                        params.memoryIntensive ? "M" : "C"};
        for (std::size_t i = 0; i < thresholds.size(); ++i) {
            mgr::ManagerConfig mc;
            mc.quantum = quantum;
            mc.holdOff = 1;
            mc.tolerableSlowdown = thresholds[i];
            auto out = exp::runManaged(params, mc, table_vf);

            double slowdown = static_cast<double>(out.totalTime) /
                                  static_cast<double>(baseline.totalTime) -
                              1.0;
            double saved = 1.0 - out.energy.total() /
                                     baseline.energy.total();
            (params.memoryIntensive ? mem_sav : cpu_sav)[i].push_back(
                saved);
            row.push_back(exp::Table::pct(slowdown));
            row.push_back(exp::Table::pct(saved));
            row.push_back(exp::Table::fmt(out.averageGHz, 2));
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        double m = 0, c = 0;
        for (double v : mem_sav[i])
            m += v;
        for (double v : cpu_sav[i])
            c += v;
        if (!mem_sav[i].empty())
            m /= static_cast<double>(mem_sav[i].size());
        if (!cpu_sav[i].empty())
            c /= static_cast<double>(cpu_sav[i].size());
        std::cout << "\nthreshold " << exp::Table::pct(thresholds[i], 0)
                  << ": avg energy saved, memory-intensive "
                  << exp::Table::pct(m) << ", compute-intensive "
                  << exp::Table::pct(c);
    }
    std::cout << "\n\nPaper reference: memory-intensive 13% @ 5% and "
                 "19% @ 10% threshold; little for compute-intensive.\n";
    return 0;
}
