/**
 * @file
 * Figure 6 reproduction: energy savings under the DEP+BURST-driven
 * energy manager for user-specified slowdown thresholds of 5% and 10%.
 *
 * For each benchmark: run once pinned at the highest frequency
 * (baseline time and energy), then run under the manager at each
 * threshold; report achieved slowdown and energy savings. Paper
 * reference: memory-intensive average savings of 13% (5% threshold)
 * and 19% (10% threshold), with achieved slowdowns near the targets.
 *
 * Both grids — the fixed baselines and the (benchmark x threshold)
 * managed runs — execute on the sweep engine; managed cells aggregate
 * by index, so the table is identical at any worker count.
 *
 * Usage: fig6_energy_manager [--only=<name>] [--quantum-us=50]
 *                            [--thresholds=0.05,0.10]
 *                            [--mode=exact|sampled]
 *                            [--startup-us=60] [--detail-us=30]
 *                            [--gap-us=980] [--max-gap-us=0]
 *                            [--drift-permille=50]
 *                            [--workers=N] [--progress]
 *
 * --mode=sampled runs both the fixed baselines and the managed cells
 * interval-sampled (the managed side forks the fast-path model per
 * operating point and forces detail around DVFS transitions and GC
 * boundaries); slowdown/savings are then within-mode ratios, so the
 * sampled table tracks the exact one at a fraction of the cost
 * (bench/fig10_managed_sampling measures the error bound).
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "exp/sweep/sweep.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    const Tick quantum = static_cast<Tick>(args.getInt("quantum-us", 50)) *
                         kTicksPerUs;

    std::vector<double> thresholds;
    {
        std::stringstream ss(args.get("thresholds", "0.05,0.10"));
        std::string item;
        while (std::getline(ss, item, ','))
            thresholds.push_back(std::stod(item));
    }

    auto table_vf = power::VfTable::haswell();
    const unsigned workers = bench::sweepWorkers(args);
    const bool progress = args.has("progress");
    const exp::SimMode mode = bench::modeFromArgs(args);
    const sim::SamplingConfig sampling = bench::samplingFromArgs(args);

    // Fixed baselines: every benchmark at the highest operating point.
    exp::sweep::SweepSpec base_spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (only.empty() || params.name == only)
            base_spec.workloads.push_back(params);
    }
    if (base_spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << only << "\n";
        return 1;
    }
    base_spec.frequencies = {table_vf.highest()};
    base_spec.runOptions.mode = mode;
    base_spec.runOptions.sampling = sampling;

    exp::sweep::SweepRunner::Options ro;
    ro.workers = workers;
    ro.progress = progress;
    ro.label = "fig6 baselines";
    auto baselines = exp::sweep::SweepRunner(base_spec, ro).run();

    // Managed cells: (benchmark x threshold), threshold innermost,
    // matching the serial harness's loop nest.
    const auto &wls = baselines.spec.workloads;
    const std::size_t n_cells = wls.size() * thresholds.size();
    auto managed = exp::sweep::sweepMap<exp::ManagedRunOutput>(
        n_cells, workers, [&](std::size_t i) {
            mgr::ManagerConfig mc;
            mc.quantum = quantum;
            mc.holdOff = 1;
            mc.tolerableSlowdown = thresholds[i % thresholds.size()];
            exp::RunOptions opts;
            opts.mode = mode;
            opts.sampling = sampling;
            return exp::runManaged(wls[i / thresholds.size()], mc,
                                   table_vf, opts);
        });

    std::cout << "Figure 6: energy manager (DEP+BURST, quantum "
              << ticksToUs(quantum) << " us scaled = "
              << ticksToUs(quantum) / 10.0 / 100.0 * 1000.0
              << " ms at paper scale, hold-off 1)\n\n";

    std::vector<std::string> headers = {"benchmark", "type"};
    for (double th : thresholds) {
        headers.push_back(exp::Table::pct(th, 0) + " slowdown");
        headers.push_back(exp::Table::pct(th, 0) + " energy saved");
        headers.push_back(exp::Table::pct(th, 0) + " avg GHz");
    }
    exp::Table table(headers);

    std::vector<std::vector<double>> mem_sav(thresholds.size());
    std::vector<std::vector<double>> cpu_sav(thresholds.size());

    for (std::size_t w = 0; w < wls.size(); ++w) {
        const auto &params = wls[w];
        const auto &baseline = baselines.at(w, std::size_t{0});

        std::vector<std::string> row = {params.name,
                                        params.memoryIntensive ? "M" : "C"};
        for (std::size_t i = 0; i < thresholds.size(); ++i) {
            const auto &out = managed[w * thresholds.size() + i];

            double slowdown = static_cast<double>(out.totalTime) /
                                  static_cast<double>(baseline.totalTime) -
                              1.0;
            double saved = 1.0 - out.energy.total() /
                                     baseline.energy.total();
            (params.memoryIntensive ? mem_sav : cpu_sav)[i].push_back(
                saved);
            row.push_back(exp::Table::pct(slowdown));
            row.push_back(exp::Table::pct(saved));
            row.push_back(exp::Table::fmt(out.averageGHz, 2));
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        double m = 0, c = 0;
        for (double v : mem_sav[i])
            m += v;
        for (double v : cpu_sav[i])
            c += v;
        if (!mem_sav[i].empty())
            m /= static_cast<double>(mem_sav[i].size());
        if (!cpu_sav[i].empty())
            c /= static_cast<double>(cpu_sav[i].size());
        std::cout << "\nthreshold " << exp::Table::pct(thresholds[i], 0)
                  << ": avg energy saved, memory-intensive "
                  << exp::Table::pct(m) << ", compute-intensive "
                  << exp::Table::pct(c);
    }
    std::cout << "\n\nPaper reference: memory-intensive 13% @ 5% and "
                 "19% @ 10% threshold; little for compute-intensive.\n";
    return 0;
}
