/**
 * @file
 * dvfsd: the prediction-serving daemon.
 *
 * Serves the DVFSRPC1 protocol (DESIGN.md section 12) over TCP
 * (127.0.0.1) or a Unix-domain socket: clients upload .dvfstrace
 * images once, then issue Predict / WhatIfGrid / OptimalVf / Stats
 * queries against the cached trace by digest. Queries from all
 * connections are batched onto the sweep work-stealing pool, so
 * concurrent clients share the machine the way offline sweeps do.
 *
 * SIGTERM/SIGINT starts a graceful drain: stop accepting, answer
 * everything already queued, flush, exit 0.
 *
 * Usage: dvfsd [--port=N] [--unix=PATH] [--workers=N]
 *              [--cache-mb=N] [--max-in-flight=N]
 */

#include <csignal>
#include <iostream>

#include "bench_util.hh"
#include "serve/server.hh"

using namespace dvfs;

namespace {

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->stop();  // async-signal-safe (one self-pipe write)
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("dvfsd", "the DVFS prediction-serving daemon");
    args.add("port", "N",
             "TCP listen port on 127.0.0.1 (default 0 = ephemeral; "
             "the chosen port is printed)")
        .add("unix", "PATH",
             "listen on a Unix-domain socket instead of TCP")
        .addWorkers()
        .add("cache-mb", "N",
             "trace cache budget in decoded MB (default 256)")
        .add("max-in-flight", "N",
             "per-connection queued-request bound before oldest-first "
             "shedding (default 64)");
    args.parse(argc, argv);

    serve::ServerConfig cfg;
    cfg.tcpPort = static_cast<std::uint16_t>(args.getInt("port", 0));
    cfg.unixPath = args.get("unix");
    cfg.workers = bench::chooseWorkers(args).effective;
    cfg.cacheBytes =
        static_cast<std::size_t>(args.getInt("cache-mb", 256)) << 20;
    cfg.maxInFlight =
        static_cast<std::size_t>(args.getInt("max-in-flight", 64));

    serve::Server server(cfg);
    g_server = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    if (cfg.unixPath.empty()) {
        std::cout << "dvfsd: listening on 127.0.0.1:" << server.port()
                  << " (workers=" << cfg.workers
                  << ", cache=" << (cfg.cacheBytes >> 20) << "MB)"
                  << std::endl;
    } else {
        std::cout << "dvfsd: listening on " << cfg.unixPath
                  << " (workers=" << cfg.workers
                  << ", cache=" << (cfg.cacheBytes >> 20) << "MB)"
                  << std::endl;
    }

    server.run();
    std::cout << "dvfsd: drained; served " << server.requestsServed()
              << " requests\n";
    return 0;
}
