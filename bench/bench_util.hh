/**
 * @file
 * Shared helpers for the experiment harness binaries.
 */

#ifndef DVFS_BENCH_BENCH_UTIL_HH
#define DVFS_BENCH_BENCH_UTIL_HH

#include <cstring>
#include <string>
#include <vector>

#include "exp/sweep/pool.hh"

namespace dvfs::bench {

/** Minimal flag parser: --key=value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            _args.emplace_back(argv[i]);
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        const std::string prefix = "--" + key + "=";
        for (const auto &a : _args) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    bool
    has(const std::string &key) const
    {
        const std::string flag = "--" + key;
        const std::string prefix = flag + "=";
        for (const auto &a : _args) {
            if (a == flag || a.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    }

    double
    getDouble(const std::string &key, double def) const
    {
        std::string v = get(key);
        return v.empty() ? def : std::stod(v);
    }

    long
    getInt(const std::string &key, long def) const
    {
        std::string v = get(key);
        return v.empty() ? def : std::stol(v);
    }

  private:
    std::vector<std::string> _args;
};

/**
 * Sweep pool width for a harness binary: --workers=N if given, else
 * DVFS_SWEEP_WORKERS / hardware_concurrency via defaultWorkers().
 */
inline unsigned
sweepWorkers(const Args &args)
{
    long v = args.getInt("workers", 0);
    return v >= 1 ? static_cast<unsigned>(v)
                  : exp::sweep::defaultWorkers();
}

} // namespace dvfs::bench

#endif // DVFS_BENCH_BENCH_UTIL_HH
