/**
 * @file
 * Shared helpers for the experiment harness binaries.
 */

#ifndef DVFS_BENCH_BENCH_UTIL_HH
#define DVFS_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep/pool.hh"
#include "exp/sweep/sweep.hh"
#include "sim/sampling.hh"
#include "wl/suite.hh"

namespace dvfs::bench {

/** Minimal flag parser: --key=value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            _args.emplace_back(argv[i]);
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        const std::string prefix = "--" + key + "=";
        for (const auto &a : _args) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    bool
    has(const std::string &key) const
    {
        const std::string flag = "--" + key;
        const std::string prefix = flag + "=";
        for (const auto &a : _args) {
            if (a == flag || a.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    }

    double
    getDouble(const std::string &key, double def) const
    {
        std::string v = get(key);
        return v.empty() ? def : std::stod(v);
    }

    long
    getInt(const std::string &key, long def) const
    {
        std::string v = get(key);
        return v.empty() ? def : std::stol(v);
    }

  private:
    std::vector<std::string> _args;
};

/** Hardware thread count, never zero. */
inline unsigned
hardwareWidth()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * A harness binary's sweep pool width, with provenance.
 *
 * An explicit --workers=N flag or DVFS_SWEEP_WORKERS env var is
 * honored verbatim (oversubscription on purpose stays possible);
 * otherwise the default is the hardware width — i.e. defaults are
 * clamped to hardware_concurrency(), since oversubscribing a sweep of
 * CPU-bound cells only adds scheduling noise (BENCH_sweep.json shows
 * workers=8 at 0.86x serial on a single-thread host). Both the
 * requested and the effective width go into the JSONL record so the
 * perf trajectory stays interpretable across hosts.
 */
struct WorkerChoice {
    unsigned requested;  ///< what flag/env/default asked for
    unsigned effective;  ///< what the pool will actually use
    bool isExplicit;     ///< came from --workers or DVFS_SWEEP_WORKERS
};

inline WorkerChoice
chooseWorkers(const Args &args)
{
    long v = args.getInt("workers", 0);
    if (v >= 1) {
        auto w = static_cast<unsigned>(v);
        return {w, w, true};
    }
    if (const char *env = std::getenv("DVFS_SWEEP_WORKERS")) {
        char *end = nullptr;
        long ev = std::strtol(env, &end, 10);
        if (end != env && ev >= 1) {
            auto w = static_cast<unsigned>(ev);
            return {w, w, true};
        }
    }
    unsigned hw = hardwareWidth();
    return {hw, hw, false};
}

/**
 * Clamp a default (non-explicit) worker count to the hardware width.
 * Explicit choices pass through untouched.
 */
inline unsigned
clampWorkers(unsigned w, bool is_explicit)
{
    if (is_explicit)
        return w;
    unsigned hw = hardwareWidth();
    return w < hw ? w : hw;
}

/**
 * Sweep pool width for a harness binary: --workers=N if given, else
 * DVFS_SWEEP_WORKERS / hardware_concurrency via defaultWorkers().
 */
inline unsigned
sweepWorkers(const Args &args)
{
    return chooseWorkers(args).effective;
}

/**
 * Simulation mode from --mode=exact|sampled (default exact).
 * fatal()s on any other value, listing the accepted names.
 */
inline exp::SimMode
modeFromArgs(const Args &args)
{
    return exp::parseSimMode(args.get("mode", "exact"), "--mode");
}

/**
 * Sampling window placement from --startup-us / --detail-us /
 * --gap-us, defaulting to the library's measured sweet spot
 * (sim::SamplingConfig). Only meaningful with --mode=sampled.
 */
inline sim::SamplingConfig
samplingFromArgs(const Args &args)
{
    sim::SamplingConfig cfg;
    cfg.startupDetail = static_cast<Tick>(args.getInt(
                            "startup-us",
                            static_cast<long>(cfg.startupDetail /
                                              kTicksPerUs))) *
                        kTicksPerUs;
    cfg.detailWindow = static_cast<Tick>(args.getInt(
                           "detail-us",
                           static_cast<long>(cfg.detailWindow /
                                             kTicksPerUs))) *
                       kTicksPerUs;
    cfg.gapWindow = static_cast<Tick>(args.getInt(
                        "gap-us",
                        static_cast<long>(cfg.gapWindow / kTicksPerUs))) *
                    kTicksPerUs;
    // Adaptive placement: --max-gap-us caps the stretched gap (0 =
    // fixed cadence), --drift-permille sets the steadiness threshold.
    cfg.maxGapWindow =
        static_cast<Tick>(args.getInt(
            "max-gap-us",
            static_cast<long>(cfg.maxGapWindow / kTicksPerUs))) *
        kTicksPerUs;
    cfg.driftThresholdPermille = static_cast<std::uint32_t>(args.getInt(
        "drift-permille",
        static_cast<long>(cfg.driftThresholdPermille)));
    return cfg;
}

/**
 * The Figure 3 ground-truth grid: the DaCapo suite (optionally the
 * first @p n_bench entries, or the one named by @p only) crossed with
 * the four operating points both directions read. Shared by
 * fig3_accuracy, trace_record and trace_replay so record and replay
 * agree on cell coordinates. Seeds stay at the spec default ({42}).
 */
inline exp::sweep::SweepSpec
fig3GridSpec(std::size_t n_bench = 0, const std::string &only = "")
{
    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (n_bench != 0 && spec.workloads.size() >= n_bench)
            break;
        if (only.empty() || params.name == only)
            spec.workloads.push_back(params);
    }
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    return spec;
}

} // namespace dvfs::bench

#endif // DVFS_BENCH_BENCH_UTIL_HH
