/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * FlagSet is the one CLI parser every harness uses: flags are declared
 * once (key, value hint, help line), --help output is generated from
 * the declarations, an unknown flag is fatal() naming the flag, and a
 * malformed value is fatal() naming the flag it was passed to. The
 * canned addWorkers()/addMode()/addSampling()/addRepeat()/addJson()
 * declarations keep the flags every harness shares spelled — and
 * documented — identically across binaries.
 *
 * The worker/mode/sampling helpers are templates over any args-like
 * type (FlagSet or the legacy Args) exposing get/has/getInt.
 */

#ifndef DVFS_BENCH_BENCH_UTIL_HH
#define DVFS_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep/pool.hh"
#include "exp/sweep/sweep.hh"
#include "sim/log.hh"
#include "sim/sampling.hh"
#include "wl/suite.hh"

namespace dvfs::bench {

/** Minimal flag parser: --key=value and boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            _args.emplace_back(argv[i]);
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        const std::string prefix = "--" + key + "=";
        for (const auto &a : _args) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    bool
    has(const std::string &key) const
    {
        const std::string flag = "--" + key;
        const std::string prefix = flag + "=";
        for (const auto &a : _args) {
            if (a == flag || a.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    }

    double
    getDouble(const std::string &key, double def) const
    {
        std::string v = get(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
            fatal("--%s: expected a number, got '%s'", key.c_str(),
                  v.c_str());
        }
        return parsed;
    }

    long
    getInt(const std::string &key, long def) const
    {
        std::string v = get(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        long parsed = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
            fatal("--%s: expected an integer, got '%s'", key.c_str(),
                  v.c_str());
        }
        return parsed;
    }

  private:
    std::vector<std::string> _args;
};

/**
 * Declared-flags CLI parser with a generated --help.
 *
 * Declare every flag up front, then parse(). --help prints the
 * generated listing and exits 0; any flag that was not declared is
 * fatal(), naming the flag. parseKnown() is the cooperative variant
 * for binaries that share argv with another parser (google-benchmark):
 * it consumes only declared flags, leaves the rest in place, and on
 * --help prints our listing but leaves the flag for the other parser
 * to document its own.
 */
class FlagSet
{
  public:
    /**
     * @param prog     binary name, used in help and fatal messages.
     * @param summary  one-line description printed atop --help.
     */
    FlagSet(std::string prog, std::string summary)
        : _prog(std::move(prog)), _summary(std::move(summary))
    {
    }

    /**
     * Declare a value flag --key=HINT. @p help should include the
     * default in prose (house style: "... (default 4)").
     */
    FlagSet &
    add(const std::string &key, const std::string &hint,
        const std::string &help)
    {
        _flags.push_back({key, hint, help});
        return *this;
    }

    /** Declare a boolean flag --key. */
    FlagSet &
    addBool(const std::string &key, const std::string &help)
    {
        _flags.push_back({key, "", help});
        return *this;
    }

    /** @name Canned shared-flag declarations
     * One spelling and one help line for the flags most harnesses
     * share, so --help reads identically across binaries.
     */
    ///@{
    FlagSet &
    addWorkers()
    {
        return add("workers", "N",
                   "sweep pool width (default: DVFS_SWEEP_WORKERS or "
                   "hardware threads)");
    }

    FlagSet &
    addMode()
    {
        return add("mode", "exact|sampled",
                   "simulation fidelity (default exact)");
    }

    FlagSet &
    addSampling()
    {
        add("startup-us", "N",
            "sampled: initial detail period (default 60)");
        add("detail-us", "N",
            "sampled: periodic detail window (default 30)");
        add("gap-us", "N",
            "sampled: fast-forwarded gap (default 980)");
        add("max-gap-us", "N",
            "sampled: adaptive gap stretch cap (default 0 = fixed "
            "cadence)");
        return add("drift-permille", "N",
                   "sampled: drift threshold for stretching (default "
                   "50)");
    }

    FlagSet &
    addRepeat()
    {
        return add("repeat", "N",
                   "repeats per configuration, min wall reported "
                   "(default 1)");
    }

    FlagSet &
    addJson(const std::string &def = "BENCH_sweep.json")
    {
        return add("json", "PATH",
                   "perf-trajectory JSONL file (default " + def + ")");
    }

    FlagSet &
    addTraceDir(const std::string &help)
    {
        return add("trace-dir", "DIR", help);
    }
    ///@}

    /**
     * Parse argv. --help prints the generated listing and exits 0;
     * an undeclared flag (or a non-flag argument) is fatal(), naming
     * the offender.
     */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << help();
                std::exit(0);
            }
            const Flag *f = match(arg);
            if (!f) {
                fatal("%s: unknown flag '%s' (try --help)",
                      _prog.c_str(), arg.c_str());
            }
            record(*f, arg);
        }
    }

    /**
     * Parse only declared flags, compacting argv so another parser
     * sees the remainder. --help prints our listing and is left in
     * argv for the other parser. Returns the new argc.
     */
    int
    parseKnown(int argc, char **argv)
    {
        int kept = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << help() << "\n";
                argv[kept++] = argv[i];
                continue;
            }
            if (const Flag *f = match(arg))
                record(*f, arg);
            else
                argv[kept++] = argv[i];
        }
        argv[kept] = nullptr;
        return kept;
    }

    /** The generated --help text. */
    std::string
    help() const
    {
        std::size_t width = 0;
        for (const Flag &f : _flags)
            width = std::max(width, spelling(f).size());

        std::string out = _prog + ": " + _summary + "\n";
        for (const Flag &f : _flags) {
            const std::string s = spelling(f);
            out += "  " + s + std::string(width - s.size() + 2, ' ') +
                   f.help + "\n";
        }
        return out;
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        requireDeclared(key);
        for (const auto &[k, v] : _values) {
            if (k == key)
                return v;
        }
        return def;
    }

    bool
    has(const std::string &key) const
    {
        requireDeclared(key);
        for (const auto &[k, v] : _values) {
            if (k == key)
                return true;
        }
        return false;
    }

    long
    getInt(const std::string &key, long def) const
    {
        std::string v = get(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        long parsed = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
            fatal("--%s: expected an integer, got '%s'", key.c_str(),
                  v.c_str());
        }
        return parsed;
    }

    double
    getDouble(const std::string &key, double def) const
    {
        std::string v = get(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
            fatal("--%s: expected a number, got '%s'", key.c_str(),
                  v.c_str());
        }
        return parsed;
    }

  private:
    struct Flag {
        std::string key;
        std::string hint;  ///< value hint; empty for boolean flags
        std::string help;
    };

    std::string
    spelling(const Flag &f) const
    {
        return "--" + f.key + (f.hint.empty() ? "" : "=" + f.hint);
    }

    const Flag *
    match(const std::string &arg) const
    {
        for (const Flag &f : _flags) {
            const std::string flag = "--" + f.key;
            if (arg == flag || arg.rfind(flag + "=", 0) == 0)
                return &f;
        }
        return nullptr;
    }

    void
    record(const Flag &f, const std::string &arg)
    {
        const std::string prefix = "--" + f.key + "=";
        if (arg.rfind(prefix, 0) == 0)
            _values.emplace_back(f.key, arg.substr(prefix.size()));
        else
            _values.emplace_back(f.key, "");
    }

    void
    requireDeclared(const std::string &key) const
    {
        for (const Flag &f : _flags) {
            if (f.key == key)
                return;
        }
        panic("%s queried undeclared flag --%s", _prog.c_str(),
              key.c_str());
    }

    std::string _prog;
    std::string _summary;
    std::vector<Flag> _flags;
    /** (key, value) in command-line order; boolean presence = "". */
    std::vector<std::pair<std::string, std::string>> _values;
};

/** Hardware thread count, never zero. */
inline unsigned
hardwareWidth()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * A harness binary's sweep pool width, with provenance.
 *
 * An explicit --workers=N flag or DVFS_SWEEP_WORKERS env var is
 * honored verbatim (oversubscription on purpose stays possible);
 * otherwise the default is the hardware width — i.e. defaults are
 * clamped to hardware_concurrency(), since oversubscribing a sweep of
 * CPU-bound cells only adds scheduling noise (BENCH_sweep.json shows
 * workers=8 at 0.86x serial on a single-thread host). Both the
 * requested and the effective width go into the JSONL record so the
 * perf trajectory stays interpretable across hosts.
 */
struct WorkerChoice {
    unsigned requested;  ///< what flag/env/default asked for
    unsigned effective;  ///< what the pool will actually use
    bool isExplicit;     ///< came from --workers or DVFS_SWEEP_WORKERS
};

template <typename ArgsT>
inline WorkerChoice
chooseWorkers(const ArgsT &args)
{
    long v = args.getInt("workers", 0);
    if (v >= 1) {
        auto w = static_cast<unsigned>(v);
        return {w, w, true};
    }
    if (const char *env = std::getenv("DVFS_SWEEP_WORKERS")) {
        char *end = nullptr;
        long ev = std::strtol(env, &end, 10);
        if (end != env && ev >= 1) {
            auto w = static_cast<unsigned>(ev);
            return {w, w, true};
        }
    }
    unsigned hw = hardwareWidth();
    return {hw, hw, false};
}

/**
 * Clamp a default (non-explicit) worker count to the hardware width.
 * Explicit choices pass through untouched.
 */
inline unsigned
clampWorkers(unsigned w, bool is_explicit)
{
    if (is_explicit)
        return w;
    unsigned hw = hardwareWidth();
    return w < hw ? w : hw;
}

/**
 * Sweep pool width for a harness binary: --workers=N if given, else
 * DVFS_SWEEP_WORKERS / hardware_concurrency via defaultWorkers().
 */
template <typename ArgsT>
inline unsigned
sweepWorkers(const ArgsT &args)
{
    return chooseWorkers(args).effective;
}

/**
 * Simulation mode from --mode=exact|sampled (default exact).
 * fatal()s on any other value, naming the flag.
 */
template <typename ArgsT>
inline exp::SimMode
modeFromArgs(const ArgsT &args)
{
    return exp::parseSimMode(args.get("mode", "exact"), "--mode");
}

/**
 * Sampling window placement from --startup-us / --detail-us /
 * --gap-us, defaulting to the library's measured sweet spot
 * (sim::SamplingConfig). Only meaningful with --mode=sampled.
 */
template <typename ArgsT>
inline sim::SamplingConfig
samplingFromArgs(const ArgsT &args)
{
    sim::SamplingConfig cfg;
    cfg.startupDetail = static_cast<Tick>(args.getInt(
                            "startup-us",
                            static_cast<long>(cfg.startupDetail /
                                              kTicksPerUs))) *
                        kTicksPerUs;
    cfg.detailWindow = static_cast<Tick>(args.getInt(
                           "detail-us",
                           static_cast<long>(cfg.detailWindow /
                                             kTicksPerUs))) *
                       kTicksPerUs;
    cfg.gapWindow = static_cast<Tick>(args.getInt(
                        "gap-us",
                        static_cast<long>(cfg.gapWindow / kTicksPerUs))) *
                    kTicksPerUs;
    // Adaptive placement: --max-gap-us caps the stretched gap (0 =
    // fixed cadence), --drift-permille sets the steadiness threshold.
    cfg.maxGapWindow =
        static_cast<Tick>(args.getInt(
            "max-gap-us",
            static_cast<long>(cfg.maxGapWindow / kTicksPerUs))) *
        kTicksPerUs;
    cfg.driftThresholdPermille = static_cast<std::uint32_t>(args.getInt(
        "drift-permille",
        static_cast<long>(cfg.driftThresholdPermille)));
    return cfg;
}

/**
 * The Figure 3 ground-truth grid: the DaCapo suite (optionally the
 * first @p n_bench entries, or the one named by @p only) crossed with
 * the four operating points both directions read. Shared by
 * fig3_accuracy, trace_record and trace_replay so record and replay
 * agree on cell coordinates. Seeds stay at the spec default ({42}).
 */
inline exp::sweep::SweepSpec
fig3GridSpec(std::size_t n_bench = 0, const std::string &only = "")
{
    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (n_bench != 0 && spec.workloads.size() >= n_bench)
            break;
        if (only.empty() || params.name == only)
            spec.workloads.push_back(params);
    }
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    return spec;
}

} // namespace dvfs::bench

#endif // DVFS_BENCH_BENCH_UTIL_HH
