/**
 * @file
 * Sweep-engine scaling benchmark and determinism self-check.
 *
 * Runs one fig3-style ground-truth grid (benchmarks x operating
 * points x seeds) serially and then at several worker counts, checks
 * that every configuration produces bit-identical per-cell
 * fingerprints, and reports wall time, throughput and speedup. Each
 * measured configuration appends one dvfs-sweep-bench-v1 record to
 * BENCH_sweep.json (see EXPERIMENTS.md), building a perf trajectory
 * across commits.
 *
 * Exit status is nonzero if any parallel run's fingerprint deviates
 * from the serial reference — this binary doubles as a cheap
 * end-to-end determinism check for CI.
 *
 * Usage: sweep_bench [--benchmarks=4] [--seeds=1] [--workers=N]
 *                    [--mode=exact|sampled] [--startup-us=60]
 *                    [--detail-us=30] [--gap-us=980] [--max-gap-us=0]
 *                    [--drift-permille=50] [--managed]
 *                    [--repeat=N] [--json=BENCH_sweep.json] [--progress]
 *                    [--profile] [--expect-fingerprint=0x...]
 *
 * --managed swaps the fixed-frequency grid for an energy-manager-
 * governed one (benchmarks x seeds, default manager config): the
 * determinism self-check then covers managed cells — including
 * sampled managed cells, whose per-operating-point model forking and
 * forced detail windows must stay bit-identical at any worker count.
 *
 * --repeat=N measures each configuration N times and reports the
 * minimum wall time (noise floor on loaded machines); every repeat
 * must reproduce the same fingerprint — in either mode, since sampled
 * runs are exactly as deterministic as exact ones.
 *
 * --mode=sampled runs the grid under interval sampling (detail
 * windows + analytically fast-forwarded gaps, DESIGN.md section 11);
 * the window placement flags are ignored in exact mode. Sampled
 * fingerprints are stable but intentionally distinct from exact ones,
 * and each JSONL record carries a "mode" field so the perf-trajectory
 * tooling (scripts/perf_guard.py) only ever compares like with like.
 *
 * --profile reports the hot-path profiler's per-subsystem wall-time
 * breakdown for each configuration and embeds it in the JSONL record;
 * it needs a DVFS_PROFILE=ON build (otherwise a warning is printed
 * and the run proceeds unprofiled). --expect-fingerprint fails the
 * run unless the serial digest matches the given value — CI uses it
 * to prove the profiled build is bit-identical to the plain one.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/sweep/differential.hh"
#include "exp/sweep/fingerprint.hh"
#include "exp/sweep/sweep.hh"
#include "exp/table.hh"
#include "sim/profile.hh"

using namespace dvfs;

namespace {

struct Measurement {
    unsigned workers;
    double wallMs;  ///< min over repeats
    std::uint64_t digest;
    bool repeatsConsistent = true;
    sim::prof::Snapshot profile;  ///< all-zero unless profiling
};

/** Serialize a profiler snapshot as a JSON object. */
std::string
profileJson(const sim::prof::Snapshot &snap)
{
    const double total = static_cast<double>(snap.totalNs());
    std::ostringstream os;
    os << "{\"total_ns\":" << snap.totalNs();
    for (unsigned i = 0; i < sim::prof::kSubsystemCount; ++i) {
        const auto &e = snap.bySubsystem[i];
        os << ",\"" << sim::prof::subsystemName(
                           static_cast<sim::prof::Subsystem>(i))
           << "\":{\"self_ns\":" << e.selfNs << ",\"enters\":" << e.enters
           << ",\"pct\":"
           << (total > 0.0 ? 100.0 * static_cast<double>(e.selfNs) / total
                           : 0.0)
           << "}";
    }
    os << "}";
    return os.str();
}

void
printProfile(const sim::prof::Snapshot &snap, unsigned workers)
{
    const double total = static_cast<double>(snap.totalNs());
    std::cout << "profile (workers=" << workers << "):\n";
    exp::Table t({"subsystem", "self ms", "%", "enters"});
    for (unsigned i = 0; i < sim::prof::kSubsystemCount; ++i) {
        const auto &e = snap.bySubsystem[i];
        t.addRow({sim::prof::subsystemName(
                      static_cast<sim::prof::Subsystem>(i)),
                  exp::Table::fmt(static_cast<double>(e.selfNs) / 1e6, 1),
                  exp::Table::fmt(total > 0.0
                                      ? 100.0 *
                                            static_cast<double>(e.selfNs) /
                                            total
                                      : 0.0,
                                  1),
                  std::to_string(e.enters)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/** One managed grid measurement: (workload x seed) cells, by index. */
Measurement
measureManaged(const std::vector<wl::WorkloadParams> &workloads,
               const std::vector<std::uint64_t> &seeds,
               const power::VfTable &table_vf, const exp::RunOptions &opts,
               unsigned workers, unsigned repeat, bool profiling)
{
    Measurement m;
    m.workers = workers;
    if (profiling)
        sim::prof::reset();
    const std::size_t n = workloads.size() * seeds.size();
    for (unsigned r = 0; r < repeat; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        auto cells = exp::sweep::sweepMap<exp::ManagedRunOutput>(
            n, workers, [&](std::size_t i) {
                mgr::ManagerConfig mc;
                exp::RunOptions ro = opts;
                ro.seed = seeds[i % seeds.size()];
                return exp::runManaged(workloads[i / seeds.size()], mc,
                                       table_vf, ro);
            });
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::uint64_t digest = exp::sweep::managedGridDigest(cells);

        if (r == 0) {
            m.wallMs = ms;
            m.digest = digest;
        } else {
            m.wallMs = std::min(m.wallMs, ms);
            if (digest != m.digest)
                m.repeatsConsistent = false;
        }
    }
    if (profiling)
        m.profile = sim::prof::snapshot();
    return m;
}

Measurement
measure(const exp::sweep::SweepSpec &spec, unsigned workers,
        unsigned repeat, bool progress, bool profiling)
{
    Measurement m;
    m.workers = workers;
    if (profiling)
        sim::prof::reset();
    for (unsigned r = 0; r < repeat; ++r) {
        exp::sweep::SweepRunner::Options ro;
        ro.workers = workers;
        ro.progress = progress;
        ro.label = "sweep_bench w=" + std::to_string(workers);

        auto t0 = std::chrono::steady_clock::now();
        auto res = exp::sweep::SweepRunner(spec, ro).run();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::uint64_t digest = exp::sweep::gridDigest(res);

        if (r == 0) {
            m.wallMs = ms;
            m.digest = digest;
        } else {
            m.wallMs = std::min(m.wallMs, ms);
            if (digest != m.digest)
                m.repeatsConsistent = false;
        }
    }
    if (profiling)
        m.profile = sim::prof::snapshot();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("sweep_bench",
                        "sweep-engine scaling benchmark and "
                        "determinism self-check");
    args.add("benchmarks", "N",
             "workloads from the DaCapo suite (default 4)")
        .add("seeds", "N", "replicate seeds per workload (default 1)")
        .add("workers", "N",
             "measure only this pool width (default: 1,2,4,... up to "
             "hardware)")
        .addMode()
        .addSampling()
        .addBool("managed",
                 "energy-manager-governed grid (benchmarks x seeds) "
                 "instead of fixed frequencies")
        .addRepeat()
        .addJson()
        .addBool("progress", "progress/ETA lines on stderr")
        .addBool("profile",
                 "per-subsystem wall breakdown (DVFS_PROFILE=ON "
                 "builds)")
        .add("expect-fingerprint", "0x...",
             "fail unless the serial digest matches");
    args.parse(argc, argv);
    const auto n_bench =
        static_cast<std::size_t>(args.getInt("benchmarks", 4));
    const auto n_seeds = static_cast<std::size_t>(args.getInt("seeds", 1));
    const std::string json_path = args.get("json", "BENCH_sweep.json");
    const bool progress = args.has("progress");
    const bench::WorkerChoice choice = bench::chooseWorkers(args);
    const auto repeat = static_cast<unsigned>(
        std::max(1L, args.getInt("repeat", 1)));

    bool profiling = args.has("profile");
    if (profiling && !sim::prof::kEnabled) {
        std::cerr << "sweep_bench: --profile ignored: profiler not "
                     "compiled in (configure with -DDVFS_PROFILE=ON)\n";
        profiling = false;
    }
    const std::string expect_fp = args.get("expect-fingerprint");
    const exp::SimMode mode = bench::modeFromArgs(args);
    const sim::SamplingConfig sampling = bench::samplingFromArgs(args);
    const bool managed = args.has("managed");

    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (spec.workloads.size() >= n_bench)
            break;
        spec.workloads.push_back(params);
    }
    spec.frequencies = {Frequency::ghz(1.0), Frequency::ghz(2.0),
                        Frequency::ghz(3.0), Frequency::ghz(4.0)};
    spec.seeds = exp::sweep::SweepSpec::replicateSeeds(42, n_seeds);
    spec.runOptions.mode = mode;
    spec.runOptions.sampling = sampling;

    const std::size_t cells = managed
                                  ? spec.workloads.size() *
                                        spec.seeds.size()
                                  : spec.cellCount();
    const unsigned hw = bench::hardwareWidth();

    if (managed) {
        std::cout << "sweep_bench: " << spec.workloads.size()
                  << " benchmarks x " << spec.seeds.size()
                  << " seeds = " << cells
                  << " managed cells (energy-manager governed), " << hw
                  << " hardware threads, " << exp::simModeName(mode)
                  << " mode\n\n";
    } else {
        std::cout << "sweep_bench: " << spec.workloads.size()
                  << " benchmarks x " << spec.frequencies.size()
                  << " frequencies x " << spec.seeds.size() << " seeds = "
                  << cells << " cells, " << hw << " hardware threads, "
                  << exp::simModeName(mode) << " mode\n\n";
    }

    // Worker counts to measure: serial reference first, then powers
    // of two up to the hardware width. An explicit --workers /
    // DVFS_SWEEP_WORKERS is measured as asked, even beyond the
    // hardware width; the default list never oversubscribes.
    std::vector<unsigned> counts = {1};
    for (unsigned w = 2; w <= hw; w *= 2)
        counts.push_back(w);
    if (hw > 1 && counts.back() != hw)
        counts.push_back(hw);
    if (choice.isExplicit && choice.requested > 1 &&
        std::find(counts.begin(), counts.end(), choice.requested) ==
            counts.end())
        counts.push_back(choice.requested);

    exp::RunOptions managed_opts;
    managed_opts.mode = mode;
    managed_opts.sampling = sampling;
    const auto table_vf = power::VfTable::haswell();

    std::vector<Measurement> runs;
    for (unsigned w : counts) {
        runs.push_back(managed
                           ? measureManaged(spec.workloads, spec.seeds,
                                            table_vf, managed_opts, w,
                                            repeat, profiling)
                           : measure(spec, w, repeat, progress,
                                     profiling));
    }
    const Measurement &serial = runs.front();

    exp::Table table(
        {"workers", "wall ms", "cells/s", "speedup", "fingerprint"});
    bool mismatch = false;
    for (const auto &m : runs) {
        bool ok = m.digest == serial.digest && m.repeatsConsistent;
        mismatch = mismatch || !ok;

        double cells_s = static_cast<double>(cells) / (m.wallMs / 1000.0);
        char fp[32];
        std::snprintf(fp, sizeof(fp), "0x%016llx%s",
                      static_cast<unsigned long long>(m.digest),
                      ok ? "" : " MISMATCH");
        table.addRow({std::to_string(m.workers),
                      exp::Table::fmt(m.wallMs, 1),
                      exp::Table::fmt(cells_s, 2),
                      exp::Table::fmt(serial.wallMs / m.wallMs, 2), fp});

        bench::SweepJsonRecord rec(
            "sweep_bench",
            std::string(managed ? "managed workers=" : "workers=") +
                std::to_string(m.workers));
        rec.add("mode", exp::simModeName(mode))
            .add("grid", managed ? "managed" : "fixed")
            .add("workers", static_cast<std::uint64_t>(m.workers))
            .add("requested_workers", static_cast<std::uint64_t>(m.workers))
            .add("effective_workers", static_cast<std::uint64_t>(m.workers))
            .add("cells", static_cast<std::uint64_t>(cells))
            .add("repeat", static_cast<std::uint64_t>(repeat))
            .add("wall_ms", m.wallMs)
            .add("cells_per_sec", cells_s)
            .add("speedup_vs_serial", serial.wallMs / m.wallMs)
            .addHex("fingerprint", m.digest)
            .add("fingerprint_matches_serial",
                 static_cast<std::uint64_t>(ok ? 1 : 0));
        if (profiling)
            rec.addRaw("profile", profileJson(m.profile));
        rec.appendTo(json_path);
    }
    table.print(std::cout);
    std::cout << "\nappended " << runs.size() << " records to "
              << json_path << "\n\n";

    if (profiling) {
        for (const auto &m : runs)
            printProfile(m.profile, m.workers);
    }

    if (mismatch) {
        std::cerr << "sweep_bench: FINGERPRINT MISMATCH — parallel "
                     "execution is not bit-identical to serial\n";
        return 1;
    }
    std::cout << "all fingerprints match the serial reference\n";

    if (!expect_fp.empty()) {
        const std::uint64_t want =
            std::stoull(expect_fp, nullptr, 16);
        if (serial.digest != want) {
            std::cerr << "sweep_bench: fingerprint "
                      << std::hex << serial.digest
                      << " does not match expected " << want << std::dec
                      << "\n";
            return 1;
        }
        std::cout << "fingerprint matches --expect-fingerprint\n";
    }
    return 0;
}
