/**
 * @file
 * Figure 2 reproduction: the worked epoch-decomposition example.
 *
 * Recreates the paper's two-thread scenario: t0 and t1 run in
 * parallel; t1 attempts to enter a critical section t0 already holds,
 * is scheduled out (futex wait), and is woken when t0 leaves the
 * critical section. The harness prints (a) the raw futex/sched event
 * trace, (b) the epoch decomposition with per-thread busy time, and
 * (c)/(d) the per-epoch vs across-epoch CTP predictions for a target
 * frequency — the exact narrative of Figure 2.
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "exp/export.hh"
#include "exp/table.hh"
#include "pred/predictors.hh"
#include "pred/record.hh"
#include "wl/builder.hh"

using namespace dvfs;

namespace {

/** t0: compute, enter the critical section, hold it, leave, finish. */
class HolderProgram : public os::ThreadProgram
{
  public:
    HolderProgram(os::SyncId m, os::ThreadId join_target = os::kNoThread)
        : _m(m), _join(join_target)
    {
    }

    os::Action
    next(os::ThreadContext &) override
    {
        switch (_step++) {
          case 0: return os::Action::makeCompute(40'000);   // a
          case 1: return os::Action::makeMutexLock(_m);
          case 2: return os::Action::makeCompute(120'000);  // b (in CS)
          case 3: return os::Action::makeMutexUnlock(_m);
          case 4: return os::Action::makeCompute(60'000);   // c
          case 5:
            if (_join != os::kNoThread)
                return os::Action::makeJoin(_join);
            [[fallthrough]];
          default: return os::Action::makeExit();
        }
    }

  private:
    os::SyncId _m;
    os::ThreadId _join;
    int _step = 0;
};

/** t1: compute slightly longer, then block on the critical section. */
class WaiterProgram : public os::ThreadProgram
{
  public:
    explicit WaiterProgram(os::SyncId m) : _m(m) {}

    os::Action
    next(os::ThreadContext &) override
    {
        switch (_step++) {
          case 0: return os::Action::makeCompute(60'000);   // x
          case 1: return os::Action::makeMutexLock(_m);
          case 2: return os::Action::makeCompute(70'000);   // z (in CS)
          case 3: return os::Action::makeMutexUnlock(_m);
          default: return os::Action::makeExit();
        }
    }

  private:
    os::SyncId _m;
    int _step = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    os::SystemConfig cfg = wl::defaultSystemConfig(Frequency::ghz(1.0));
    cfg.cores = 2;
    os::System sys(cfg);

    os::SyncId m = sys.createMutex();
    os::ThreadId t1 = sys.addThread("t1",
                                    std::make_unique<WaiterProgram>(m));
    os::ThreadId t0 = sys.addThread("t0",
                                    std::make_unique<HolderProgram>(m, t1));
    sys.setMainThread(t0);

    pred::RunRecorder rec(sys, /*keep_events=*/true);
    sys.addListener(&rec);

    auto res = sys.run();
    auto record = rec.finalize();

    std::cout << "Figure 2 walkthrough: two threads, one critical "
                 "section, base 1 GHz\n\n(a) event trace:\n";
    for (const auto &ev : record.events) {
        std::cout << "  t=" << exp::Table::fmt(ticksToUs(ev.tick), 2)
                  << " us  " << os::syncEventKindName(ev.kind);
        if (ev.tid != os::kNoThread)
            std::cout << "  thread=" << sys.thread(ev.tid).name;
        std::cout << "\n";
    }

    std::cout << "\n(b) epoch decomposition:\n";
    exp::Table table({"epoch", "start (us)", "len (us)", "active",
                      "closed by", "stalled"});
    std::size_t i = 0;
    for (const auto &ep : record.epochs) {
        std::string active;
        for (const auto &et : ep.active) {
            if (!active.empty())
                active += ",";
            active += sys.thread(et.tid).name;
        }
        table.addRow({std::to_string(i++),
                      exp::Table::fmt(ticksToUs(ep.start), 2),
                      exp::Table::fmt(ticksToUs(ep.duration()), 2), active,
                      os::syncEventKindName(ep.boundary),
                      ep.stallTid != os::kNoThread
                          ? sys.thread(ep.stallTid).name
                          : "-"});
    }
    table.print(std::cout);

    const Frequency target = Frequency::ghz(2.0);
    pred::DepPredictor per_epoch({pred::BaseEstimator::Crit, true}, false);
    pred::DepPredictor across({pred::BaseEstimator::Crit, true}, true);
    if (argc > 1) {
        // Optional: dump the machine-readable artifacts next to the
        // human-readable walkthrough.
        std::string prefix = argv[1];
        std::ofstream fe(prefix + "_epochs.csv");
        exp::writeEpochsCsv(fe, record);
        std::ofstream fv(prefix + "_events.csv");
        exp::writeEventsCsv(fv, record);
        std::ofstream ft(prefix + "_threads.csv");
        exp::writeThreadsCsv(ft, record);
        std::cout << "\nCSV artifacts written with prefix '" << prefix
                  << "_'\n";
    }

    std::cout << "\n(c) per-epoch CTP prediction @ " << target.toString()
              << ": "
              << exp::Table::fmt(
                     ticksToUs(per_epoch.predict(record, target)), 2)
              << " us\n(d) across-epoch CTP prediction @ "
              << target.toString() << ": "
              << exp::Table::fmt(ticksToUs(across.predict(record, target)),
                                 2)
              << " us\n    measured at 1 GHz: "
              << exp::Table::fmt(ticksToUs(res.totalTime), 2) << " us\n";
    return 0;
}
