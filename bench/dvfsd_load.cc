/**
 * @file
 * dvfsd_load: open-loop load generator and live-verification harness
 * for dvfsd.
 *
 * Uploads every .dvfstrace in --trace-dir, then fires a mixed query
 * stream (Predict / WhatIfGrid / OptimalVf / re-Upload / Stats, fixed
 * deterministic proportions) at a fixed arrival rate across several
 * connections. Arrivals are OPEN-LOOP: request i is sent at
 * start + i/rate no matter how many replies are outstanding, so
 * server-side queueing shows up as latency instead of silently
 * throttling the offered load (no coordinated omission). Latency is
 * measured from the scheduled arrival to the reply.
 *
 * Each run appends one dvfs-serve-bench-v1 record (p50/p99/p999,
 * throughput, cache hit rate, shed count) to BENCH_serve.json — see
 * EXPERIMENTS.md.
 *
 * --verify-live replays every prediction query against an in-process
 * Service over the same traces and fails (exit 1) unless the served
 * reply is BIT-IDENTICAL (whole encoded frame) to the direct
 * ReplayEngine answer — the daemon adds transport, not error.
 *
 * --fail-p99-ms gates CI: exit 1 if the overall p99 exceeds the bound.
 *
 * Usage: dvfsd_load --trace-dir=DIR (--port=N | --unix=PATH)
 *                   [--rate=200] [--duration-s=5] [--connections=4]
 *                   [--seed=42] [--verify-live] [--fail-p99-ms=X]
 *                   [--json=BENCH_serve.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hh"
#include "bench_util.hh"
#include "exp/table.hh"
#include "net/client.hh"
#include "net/proto.hh"
#include "serve/service.hh"
#include "serve/trace_store.hh"

using namespace dvfs;
using Clock = std::chrono::steady_clock;

namespace {

/** SplitMix64: deterministic per-request randomness from (seed, i). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

enum class QueryKind { Predict, WhatIf, Optimal, Upload, Stats };

const char *
kindName(QueryKind k)
{
    switch (k) {
      case QueryKind::Predict: return "predict";
      case QueryKind::WhatIf:  return "whatif";
      case QueryKind::Optimal: return "optimal";
      case QueryKind::Upload:  return "upload";
      case QueryKind::Stats:   return "stats";
    }
    return "?";
}

/** The fixed mix: mostly predictions, a few uploads and stats. */
QueryKind
kindFor(std::uint64_t r)
{
    const std::uint64_t pct = r % 100;
    if (pct < 55)
        return QueryKind::Predict;
    if (pct < 80)
        return QueryKind::WhatIf;
    if (pct < 90)
        return QueryKind::Optimal;
    if (pct < 95)
        return QueryKind::Upload;
    return QueryKind::Stats;
}

net::Body
makeBody(QueryKind kind, std::uint64_t r,
         const std::vector<std::uint64_t> &digests,
         const std::vector<std::vector<std::uint8_t>> &images)
{
    const std::uint64_t d = digests[mix64(r ^ 1) % digests.size()];
    switch (kind) {
      case QueryKind::Predict: {
        net::PredictReq q;
        q.traceDigest = d;
        q.targetMHz = 1000 + 250 * (mix64(r ^ 2) % 13);  // 1.0–4.0 GHz
        return q;
      }
      case QueryKind::WhatIf: {
        net::WhatIfGridReq q;
        q.traceDigest = d;
        q.targetsMHz = {1000, 2000, 3000, 4000};
        return q;
      }
      case QueryKind::Optimal: {
        net::OptimalVfReq q;
        q.traceDigest = d;
        q.slowdownPermille = 50 + 50 * (mix64(r ^ 3) % 4);
        q.stepMHz = 0;       // table default
        q.predictor = "";    // server default (DEP+BURST)
        return q;
      }
      case QueryKind::Upload: {
        net::UploadTraceReq q;
        q.image = images[mix64(r ^ 1) % images.size()];
        return q;
      }
      case QueryKind::Stats:
        return net::StatsReq{};
    }
    return net::StatsReq{};
}

struct Sample {
    QueryKind kind;
    double latencyMs = 0.0;
    bool isError = false;
    bool shed = false;
};

/** One connection's share of the open-loop schedule. */
struct ConnWork {
    std::unique_ptr<net::RpcClient> client;
    /** Global request indices assigned to this connection. */
    std::vector<std::size_t> indices;
    /** (request id, scheduled arrival, request frame) FIFO. */
    std::deque<std::tuple<std::uint64_t, Clock::time_point, net::Frame>>
        inflight;
    std::mutex mtx;
    std::vector<Sample> samples;
    /** (request, reply) pairs kept for --verify-live. */
    std::vector<std::pair<net::Frame, net::Frame>> verifyPairs;
    std::string failure;  ///< transport/protocol failure, if any
};

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto idx = static_cast<std::size_t>(q * n);
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("dvfsd_load: cannot open '%s'", path.c_str());
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FlagSet args("dvfsd_load",
                        "open-loop load generator and live verifier "
                        "for dvfsd");
    args.addTraceDir(".dvfstrace files to upload and query (required)")
        .add("port", "N", "connect to dvfsd at 127.0.0.1:N")
        .add("unix", "PATH", "connect to dvfsd's Unix-domain socket")
        .add("rate", "R", "offered load in requests/sec (default 200)")
        .add("duration-s", "S", "run length in seconds (default 5)")
        .add("connections", "C", "client connections (default 4)")
        .add("seed", "N", "mix/schedule seed (default 42)")
        .addBool("verify-live",
                 "fail unless every served prediction is bit-identical "
                 "to a direct in-process ReplayEngine call")
        .add("fail-p99-ms", "X",
             "exit 1 if overall p99 latency exceeds X ms (0 = no gate)")
        .addJson("BENCH_serve.json");
    args.parse(argc, argv);

    const std::string trace_dir = args.get("trace-dir");
    if (trace_dir.empty())
        fatal("dvfsd_load: --trace-dir is required");
    const long port = args.getInt("port", 0);
    const std::string unix_path = args.get("unix");
    if (port == 0 && unix_path.empty())
        fatal("dvfsd_load: one of --port or --unix is required");
    const double rate = args.getDouble("rate", 200.0);
    if (rate <= 0.0)
        fatal("--rate: must be positive");
    const double duration = args.getDouble("duration-s", 5.0);
    const auto conns = static_cast<std::size_t>(
        std::max(1L, args.getInt("connections", 4)));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 42));
    const bool verify = args.has("verify-live");
    const double fail_p99 = args.getDouble("fail-p99-ms", 0.0);
    const std::string json_path = args.get("json", "BENCH_serve.json");

    auto connect = [&]() {
        return unix_path.empty()
                   ? net::RpcClient::connectTcp(
                         static_cast<std::uint16_t>(port))
                   : net::RpcClient::connectUnix(unix_path);
    };

    // ---- Setup: read and upload every trace in the directory. ----
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(trace_dir)) {
        if (entry.path().extension() == ".dvfstrace")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty())
        fatal("dvfsd_load: no .dvfstrace files in '%s'",
              trace_dir.c_str());

    std::vector<std::vector<std::uint8_t>> images;
    for (const auto &p : paths)
        images.push_back(readFileBytes(p));

    net::RpcClient setup = connect();
    std::vector<std::uint64_t> digests;
    for (std::size_t i = 0; i < images.size(); ++i) {
        net::UploadTraceReq up;
        up.image = images[i];
        net::Frame reply = setup.call(std::move(up));
        const auto *resp =
            std::get_if<net::UploadTraceResp>(&reply.body);
        if (!resp) {
            const auto *err = std::get_if<net::ErrorResp>(&reply.body);
            fatal("dvfsd_load: upload of '%s' failed: %s",
                  paths[i].c_str(),
                  err ? err->message.c_str() : "unexpected reply type");
        }
        digests.push_back(resp->traceDigest);
    }
    std::cout << "dvfsd_load: uploaded " << digests.size()
              << " traces from " << trace_dir << "\n";

    // The local mirror --verify-live compares against: the same
    // Service/ReplayEngine code the daemon runs, over the same images.
    serve::TraceStore localStore(1u << 30);
    serve::Service localService(localStore);
    if (verify) {
        for (const auto &img : images)
            localStore.put(img);
    }

    // ---- Open-loop schedule. ----
    const auto total =
        static_cast<std::size_t>(rate * duration);
    if (total == 0)
        fatal("dvfsd_load: rate x duration yields zero requests");

    std::vector<std::unique_ptr<ConnWork>> work;
    for (std::size_t c = 0; c < conns; ++c) {
        auto w = std::make_unique<ConnWork>();
        w->client = std::make_unique<net::RpcClient>(connect());
        work.push_back(std::move(w));
    }
    for (std::size_t i = 0; i < total; ++i)
        work[i % conns]->indices.push_back(i);

    const auto start = Clock::now() + std::chrono::milliseconds(50);
    const double gap_ns = 1e9 / rate;

    std::vector<std::thread> threads;
    for (auto &wptr : work) {
        ConnWork *w = wptr.get();
        // Sender: fire each assigned request at its scheduled time,
        // regardless of outstanding replies (open loop).
        threads.emplace_back([&, w] {
            try {
                for (std::size_t i : w->indices) {
                    const auto sched =
                        start + std::chrono::nanoseconds(
                                    static_cast<std::int64_t>(
                                        gap_ns *
                                        static_cast<double>(i)));
                    std::this_thread::sleep_until(sched);
                    const std::uint64_t r = mix64(seed ^ i);
                    net::Frame req = net::Frame::request(
                        w->client->nextId(),
                        makeBody(kindFor(r), r, digests, images));
                    {
                        std::lock_guard<std::mutex> lk(w->mtx);
                        w->inflight.emplace_back(req.requestId, sched,
                                                 verify ? req
                                                        : net::Frame{});
                    }
                    w->client->send(req);
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(w->mtx);
                w->failure = e.what();
            }
        });
        // Receiver: replies on one connection arrive in send order
        // (the server queues per-connection replies FIFO, and a shed
        // request is always the oldest queued).
        threads.emplace_back([&, w] {
            try {
                for (std::size_t k = 0; k < w->indices.size(); ++k) {
                    net::Frame reply = w->client->recv();
                    const auto now = Clock::now();
                    std::tuple<std::uint64_t, Clock::time_point,
                               net::Frame>
                        head;
                    {
                        std::lock_guard<std::mutex> lk(w->mtx);
                        if (w->inflight.empty())
                            throw std::runtime_error(
                                "reply with no request outstanding");
                        head = std::move(w->inflight.front());
                        w->inflight.pop_front();
                    }
                    if (reply.requestId != std::get<0>(head))
                        throw std::runtime_error(
                            "out-of-order reply: got id " +
                            std::to_string(reply.requestId) +
                            ", expected " +
                            std::to_string(std::get<0>(head)));

                    const std::size_t i = w->indices[k];
                    const std::uint64_t r = mix64(seed ^ i);
                    Sample s;
                    s.kind = kindFor(r);
                    s.latencyMs =
                        std::chrono::duration<double, std::milli>(
                            now - std::get<1>(head))
                            .count();
                    if (const auto *err =
                            std::get_if<net::ErrorResp>(&reply.body)) {
                        s.isError = true;
                        s.shed = err->code ==
                                 static_cast<std::uint32_t>(
                                     net::ErrorCode::Overloaded);
                    }
                    w->samples.push_back(s);
                    if (verify && !s.isError &&
                        s.kind != QueryKind::Stats &&
                        s.kind != QueryKind::Upload) {
                        w->verifyPairs.emplace_back(
                            std::move(std::get<2>(head)),
                            std::move(reply));
                    }
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(w->mtx);
                if (w->failure.empty())
                    w->failure = e.what();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const auto wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    for (const auto &w : work) {
        if (!w->failure.empty())
            fatal("dvfsd_load: connection failed: %s",
                  w->failure.c_str());
    }

    // ---- Aggregate. ----
    std::vector<double> lat;
    std::size_t ok = 0, errors = 0, shed = 0;
    std::vector<std::size_t> byKind(5, 0);
    for (const auto &w : work) {
        for (const Sample &s : w->samples) {
            lat.push_back(s.latencyMs);
            byKind[static_cast<std::size_t>(s.kind)]++;
            if (s.shed)
                shed++;
            else if (s.isError)
                errors++;
            else
                ok++;
        }
    }
    std::sort(lat.begin(), lat.end());
    const double p50 = percentile(lat, 0.50);
    const double p99 = percentile(lat, 0.99);
    const double p999 = percentile(lat, 0.999);
    const double throughput = static_cast<double>(lat.size()) / wall;

    // Cache effectiveness, from the server's own counters.
    double hit_rate = 0.0;
    std::uint64_t hits = 0, misses = 0, batches = 0, max_batch = 0;
    {
        net::Frame reply = setup.call(net::StatsReq{});
        if (const auto *st = std::get_if<net::StatsResp>(&reply.body)) {
            hits = st->cacheHits;
            misses = st->cacheMisses;
            batches = st->batches;
            max_batch = st->maxBatch;
            if (hits + misses > 0) {
                hit_rate = static_cast<double>(hits) /
                           static_cast<double>(hits + misses);
            }
        }
    }

    // ---- Live verification. ----
    std::size_t verified = 0, mismatches = 0;
    if (verify) {
        for (const auto &w : work) {
            for (const auto &[req, served] : w->verifyPairs) {
                net::Frame local = localService.handle(req);
                if (net::encodeFrame(local) !=
                    net::encodeFrame(served)) {
                    mismatches++;
                    std::cerr << "dvfsd_load: VERIFY MISMATCH on "
                                 "request id "
                              << req.requestId << "\n";
                } else {
                    verified++;
                }
            }
        }
    }

    // ---- Report. ----
    exp::Table table({"metric", "value"});
    table.addRow({"requests", std::to_string(lat.size())});
    table.addRow({"throughput req/s", exp::Table::fmt(throughput, 1)});
    table.addRow({"p50 ms", exp::Table::fmt(p50, 3)});
    table.addRow({"p99 ms", exp::Table::fmt(p99, 3)});
    table.addRow({"p99.9 ms", exp::Table::fmt(p999, 3)});
    table.addRow({"errors", std::to_string(errors)});
    table.addRow({"shed (overload)", std::to_string(shed)});
    table.addRow({"cache hit rate", exp::Table::fmt(hit_rate, 4)});
    if (verify) {
        table.addRow({"verified bit-identical",
                      std::to_string(verified)});
        table.addRow({"verify mismatches", std::to_string(mismatches)});
    }
    table.print(std::cout);

    bench::SweepJsonRecord rec(
        "dvfsd_load",
        "rate=" + std::to_string(static_cast<long>(rate)) +
            " conns=" + std::to_string(conns),
        "dvfs-serve-bench-v1");
    rec.add("transport", unix_path.empty() ? "tcp" : "unix")
        .add("rate_rps", rate)
        .add("duration_s", duration)
        .add("connections", static_cast<std::uint64_t>(conns))
        .add("traces", static_cast<std::uint64_t>(digests.size()))
        .add("requests", static_cast<std::uint64_t>(lat.size()))
        .add("ok", static_cast<std::uint64_t>(ok))
        .add("errors", static_cast<std::uint64_t>(errors))
        .add("shed", static_cast<std::uint64_t>(shed))
        .add("throughput_rps", throughput)
        .add("p50_ms", p50)
        .add("p99_ms", p99)
        .add("p999_ms", p999)
        .add("cache_hits", hits)
        .add("cache_misses", misses)
        .add("cache_hit_rate", hit_rate)
        .add("batches", batches)
        .add("max_batch", max_batch)
        .add("verify_live",
             static_cast<std::uint64_t>(verify ? 1 : 0))
        .add("verified", static_cast<std::uint64_t>(verified))
        .add("verify_mismatches",
             static_cast<std::uint64_t>(mismatches));
    for (std::size_t k = 0; k < byKind.size(); ++k) {
        rec.add(std::string("n_") +
                    kindName(static_cast<QueryKind>(k)),
                static_cast<std::uint64_t>(byKind[k]));
    }
    rec.appendTo(json_path);
    std::cout << "\nappended 1 record to " << json_path << "\n";

    if (verify && mismatches > 0) {
        std::cerr << "dvfsd_load: VERIFY FAILED: " << mismatches
                  << " served replies differ from direct ReplayEngine "
                     "calls\n";
        return 1;
    }
    if (fail_p99 > 0.0 && p99 > fail_p99) {
        std::cerr << "dvfsd_load: p99 " << p99 << " ms exceeds --fail-"
                  << "p99-ms=" << fail_p99 << "\n";
        return 1;
    }
    return 0;
}
