/**
 * @file
 * Figure 1 reproduction: the motivating comparison.
 *
 * Average absolute prediction error of M+CRIT (the naive multithreaded
 * extension of the state-of-the-art sequential predictor) versus
 * DEP+BURST, predicting from a 1 GHz base run to higher target
 * frequencies. The paper's headline: 27% vs 6% at the 4 GHz target.
 *
 * Usage: fig1_motivation [--targets=2000,3000,4000]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"
#include "pred/predictors.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    std::vector<Frequency> targets;
    {
        std::stringstream ss(args.get("targets", "2000,3000,4000"));
        std::string item;
        while (std::getline(ss, item, ','))
            targets.push_back(Frequency::mhz(
                static_cast<std::uint32_t>(std::stoul(item))));
    }
    const Frequency base = Frequency::ghz(1.0);

    pred::MCritPredictor mcrit({pred::BaseEstimator::Crit, false});
    pred::DepPredictor depburst({pred::BaseEstimator::Crit, true}, true);

    std::cout << "Figure 1: average absolute prediction error, base "
              << base.toString() << "\n\n";

    std::vector<std::vector<double>> mcrit_err(targets.size());
    std::vector<std::vector<double>> dep_err(targets.size());

    for (const auto &params : wl::dacapoSuite()) {
        auto base_run = exp::runFixed(params, base);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            Tick actual = exp::runFixed(params, targets[i]).totalTime;
            mcrit_err[i].push_back(pred::Predictor::relativeError(
                mcrit.predict(base_run.record, targets[i]), actual));
            dep_err[i].push_back(pred::Predictor::relativeError(
                depburst.predict(base_run.record, targets[i]), actual));
        }
    }

    exp::Table table({"target", "M+CRIT avg |err|", "DEP+BURST avg |err|"});
    for (std::size_t i = 0; i < targets.size(); ++i) {
        table.addRow({targets[i].toString(),
                      exp::Table::pct(exp::meanAbs(mcrit_err[i])),
                      exp::Table::pct(exp::meanAbs(dep_err[i]))});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference at 4 GHz: M+CRIT 27%, DEP+BURST 6%.\n";
    return 0;
}
