/**
 * @file
 * Figure 4 reproduction: across-epoch vs per-epoch critical thread
 * prediction (CTP) for DEP+BURST.
 *
 * The paper reports that carrying thread slack across epochs
 * (Algorithm 1) lowers the average absolute error from 10% to 6% at
 * 4 GHz (base 1 GHz) and from 14% to 8% at 1 GHz (base 4 GHz).
 *
 * Usage: fig4_ctp [--only=<benchmark>]
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"
#include "pred/predictors.hh"

using namespace dvfs;

namespace {

void
runDirection(const char *label, Frequency base, Frequency target,
             const std::string &only)
{
    const pred::ModelSpec spec{pred::BaseEstimator::Crit, true};
    pred::DepPredictor across(spec, true);
    pred::DepPredictor per_epoch(spec, false);

    exp::Table table({"benchmark", "per-epoch CTP", "across-epoch CTP"});
    std::vector<double> per_errs, across_errs;

    for (const auto &params : wl::dacapoSuite()) {
        if (!only.empty() && params.name != only)
            continue;
        auto base_run = exp::runFixed(params, base);
        Tick actual = exp::runFixed(params, target).totalTime;
        double pe = pred::Predictor::relativeError(
            per_epoch.predict(base_run.record, target), actual);
        double ae = pred::Predictor::relativeError(
            across.predict(base_run.record, target), actual);
        per_errs.push_back(pe);
        across_errs.push_back(ae);
        table.addRow({params.name, exp::Table::pct(pe),
                      exp::Table::pct(ae)});
    }
    table.addSeparator();
    table.addRow({"avg |err|", exp::Table::pct(exp::meanAbs(per_errs)),
                  exp::Table::pct(exp::meanAbs(across_errs))});

    std::cout << "\nFigure 4 (" << label << "): DEP+BURST, base "
              << base.toString() << " -> target " << target.toString()
              << "\n\n";
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    runDirection("low-to-high", Frequency::ghz(1.0), Frequency::ghz(4.0),
                 only);
    runDirection("high-to-low", Frequency::ghz(4.0), Frequency::ghz(1.0),
                 only);
    std::cout << "\nPaper reference: per-epoch 10% -> across-epoch 6% "
                 "(1->4 GHz); per-epoch 14% -> across-epoch 8% "
                 "(4->1 GHz).\n";
    return 0;
}
