/**
 * @file
 * Figure 5 reproduction: the energy manager's interval timeline.
 *
 * The paper's Figure 5 is a schematic of the manager's operation over
 * the first intervals (profile at f_max, pick a state, hold, re-
 * profile). This harness prints the actual decision timeline of the
 * manager on a benchmark so the mechanism is visible: quantum index,
 * time, chosen frequency, predicted slowdown, and whether the epoch
 * path or the aggregate fallback produced the estimate.
 *
 * Usage: fig5_manager_trace [--bench=xalan] [--threshold=0.05]
 *                           [--max-rows=24] [--holdoff=2]
 *                           [--csv=decisions.csv]
 */

#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/export.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string name = args.get("bench", "xalan");
    const double threshold = args.getDouble("threshold", 0.05);
    const auto max_rows =
        static_cast<std::size_t>(args.getInt("max-rows", 24));

    auto vf = power::VfTable::haswell();
    mgr::ManagerConfig mc;
    mc.tolerableSlowdown = threshold;
    mc.holdOff = static_cast<std::uint32_t>(args.getInt("holdoff", 2));

    auto out = exp::runManaged(wl::benchmarkByName(name), mc, vf);

    std::cout << "Figure 5: manager timeline for '" << name
              << "', Tolerable-Slowdown " << exp::Table::pct(threshold, 0)
              << ", Hold-Off " << mc.holdOff << ", quantum "
              << ticksToUs(mc.quantum) << " us\n\n";

    exp::Table table({"interval", "t (us)", "frequency",
                      "pred. slowdown", "estimate path"});
    std::size_t i = 0;
    for (const auto &d : out.decisions) {
        if (i >= max_rows)
            break;
        table.addRow({std::to_string(i + 1),
                      exp::Table::fmt(ticksToUs(d.tick), 1),
                      d.chosen.toString(),
                      exp::Table::pct(d.predictedSlowdown),
                      d.usedEpochs ? "DEP epochs" : "aggregate"});
        ++i;
    }
    table.print(std::cout);

    std::cout << "\nrun: " << ticksToMs(out.totalTime) << " ms, "
              << out.transitions << " DVFS transitions, average "
              << exp::Table::fmt(out.averageGHz, 2) << " GHz, "
              << out.decisions.size() << " decisions\n";

    const std::string csv = args.get("csv");
    if (!csv.empty()) {
        std::ofstream f(csv);
        exp::writeDecisionsCsv(f, out.decisions);
        std::cout << "full decision timeline written to " << csv << "\n";
    }
    return 0;
}
