/**
 * @file
 * Figure 7 reproduction: dynamic energy manager vs the static-optimal
 * oracle.
 *
 * Static-optimal runs the application once at every operating point
 * (same input — an oracle, as the paper notes), then picks the fixed
 * frequency minimizing energy subject to the slowdown bound relative
 * to the highest frequency. The paper's finding: the dynamic manager
 * matches static-optimal on compute-intensive benchmarks and beats it
 * slightly (≈2.1% on average at the 10% threshold) on memory-intensive
 * ones, because it exploits phase behaviour (GC phases tolerate lower
 * frequency).
 *
 * Usage: fig7_static_optimal [--threshold=0.10] [--step-mhz=250]
 *                            [--only=<name>]
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "exp/experiment.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    const double threshold = args.getDouble("threshold", 0.10);
    const auto step =
        static_cast<std::uint32_t>(args.getInt("step-mhz", 250));

    auto fine_vf = power::VfTable::haswell();          // manager: 125 MHz
    auto sweep_vf = power::VfTable::haswell(step);     // oracle sweep

    std::cout << "Figure 7: dynamic manager vs static-optimal oracle, "
              << "threshold " << exp::Table::pct(threshold, 0)
              << " (oracle sweep step " << step << " MHz)\n\n";

    exp::Table table({"benchmark", "type", "static-opt freq",
                      "static-opt saved", "dynamic saved", "delta"});

    double mem_delta_sum = 0.0;
    std::uint32_t mem_count = 0;

    for (const auto &params : wl::dacapoSuite()) {
        if (!only.empty() && params.name != only)
            continue;

        auto baseline = exp::runFixed(params, sweep_vf.highest());
        const double limit =
            static_cast<double>(baseline.totalTime) * (1.0 + threshold);

        // Oracle sweep (skip the highest point: zero savings there).
        Frequency best_freq = sweep_vf.highest();
        double best_energy = baseline.energy.total();
        for (const auto &p : sweep_vf.points()) {
            if (p.freq == sweep_vf.highest())
                continue;
            auto out = exp::runFixed(params, p.freq);
            if (static_cast<double>(out.totalTime) <= limit &&
                out.energy.total() < best_energy) {
                best_energy = out.energy.total();
                best_freq = p.freq;
            }
        }
        double static_saved = 1.0 - best_energy / baseline.energy.total();

        mgr::ManagerConfig mc;
        mc.tolerableSlowdown = threshold;
        auto dyn = exp::runManaged(params, mc, fine_vf);
        double dyn_saved = 1.0 - dyn.energy.total() /
                                     baseline.energy.total();

        if (params.memoryIntensive) {
            mem_delta_sum += dyn_saved - static_saved;
            ++mem_count;
        }

        table.addRow({params.name, params.memoryIntensive ? "M" : "C",
                      best_freq.toString(), exp::Table::pct(static_saved),
                      exp::Table::pct(dyn_saved),
                      exp::Table::pct(dyn_saved - static_saved)});
    }
    table.print(std::cout);

    if (mem_count > 0) {
        std::cout << "\nmemory-intensive average (dynamic - static): "
                  << exp::Table::pct(mem_delta_sum / mem_count)
                  << "  (paper: +2.1% at the 10% threshold)\n";
    }
    return 0;
}
