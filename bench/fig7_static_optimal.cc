/**
 * @file
 * Figure 7 reproduction: dynamic energy manager vs the static-optimal
 * oracle.
 *
 * Static-optimal runs the application once at every operating point
 * (same input — an oracle, as the paper notes), then picks the fixed
 * frequency minimizing energy subject to the slowdown bound relative
 * to the highest frequency. The paper's finding: the dynamic manager
 * matches static-optimal on compute-intensive benchmarks and beats it
 * slightly (≈2.1% on average at the 10% threshold) on memory-intensive
 * ones, because it exploits phase behaviour (GC phases tolerate lower
 * frequency).
 *
 * The oracle's (benchmark x operating point) grid — the most expensive
 * sweep in the repository — and the per-benchmark managed runs both
 * execute on the sweep engine.
 *
 * Usage: fig7_static_optimal [--threshold=0.10] [--step-mhz=250]
 *                            [--only=<name>] [--mode=exact|sampled]
 *                            [--startup-us=60] [--detail-us=30]
 *                            [--gap-us=980] [--max-gap-us=0]
 *                            [--drift-permille=50]
 *                            [--workers=N] [--progress]
 *
 * --mode=sampled runs the oracle grid and the managed cells
 * interval-sampled; savings are within-mode energy ratios, so the
 * comparison stays meaningful at ~an order of magnitude less cost.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "exp/sweep/sweep.hh"
#include "exp/table.hh"

using namespace dvfs;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("only");
    const double threshold = args.getDouble("threshold", 0.10);
    const auto step =
        static_cast<std::uint32_t>(args.getInt("step-mhz", 250));

    auto fine_vf = power::VfTable::haswell();          // manager: 125 MHz
    auto sweep_vf = power::VfTable::haswell(step);     // oracle sweep

    const unsigned workers = bench::sweepWorkers(args);
    const bool progress = args.has("progress");
    const exp::SimMode mode = bench::modeFromArgs(args);
    const sim::SamplingConfig sampling = bench::samplingFromArgs(args);

    // Oracle grid: every benchmark at every sweep operating point
    // (the highest doubles as the baseline).
    exp::sweep::SweepSpec spec;
    for (const auto &params : wl::dacapoSuite()) {
        if (only.empty() || params.name == only)
            spec.workloads.push_back(params);
    }
    if (spec.workloads.empty()) {
        std::cerr << "no benchmark matches --only=" << only << "\n";
        return 1;
    }
    for (const auto &p : sweep_vf.points())
        spec.frequencies.push_back(p.freq);
    spec.runOptions.mode = mode;
    spec.runOptions.sampling = sampling;

    exp::sweep::SweepRunner::Options ro;
    ro.workers = workers;
    ro.progress = progress;
    ro.label = "fig7 oracle";
    auto grid = exp::sweep::SweepRunner(spec, ro).run();

    // Dynamic manager, one run per benchmark.
    const auto &wls = grid.spec.workloads;
    auto dynamic = exp::sweep::sweepMap<exp::ManagedRunOutput>(
        wls.size(), workers, [&](std::size_t w) {
            mgr::ManagerConfig mc;
            mc.tolerableSlowdown = threshold;
            exp::RunOptions opts;
            opts.mode = mode;
            opts.sampling = sampling;
            return exp::runManaged(wls[w], mc, fine_vf, opts);
        });

    std::cout << "Figure 7: dynamic manager vs static-optimal oracle, "
              << "threshold " << exp::Table::pct(threshold, 0)
              << " (oracle sweep step " << step << " MHz)\n\n";

    exp::Table table({"benchmark", "type", "static-opt freq",
                      "static-opt saved", "dynamic saved", "delta"});

    double mem_delta_sum = 0.0;
    std::uint32_t mem_count = 0;

    for (std::size_t w = 0; w < wls.size(); ++w) {
        const auto &params = wls[w];
        const auto &baseline = grid.at(w, sweep_vf.highest());
        const double limit =
            static_cast<double>(baseline.totalTime) * (1.0 + threshold);

        // Oracle pick (skip the highest point: zero savings there).
        Frequency best_freq = sweep_vf.highest();
        double best_energy = baseline.energy.total();
        for (const auto &p : sweep_vf.points()) {
            if (p.freq == sweep_vf.highest())
                continue;
            const auto &out = grid.at(w, p.freq);
            if (static_cast<double>(out.totalTime) <= limit &&
                out.energy.total() < best_energy) {
                best_energy = out.energy.total();
                best_freq = p.freq;
            }
        }
        double static_saved = 1.0 - best_energy / baseline.energy.total();

        const auto &dyn = dynamic[w];
        double dyn_saved = 1.0 - dyn.energy.total() /
                                     baseline.energy.total();

        if (params.memoryIntensive) {
            mem_delta_sum += dyn_saved - static_saved;
            ++mem_count;
        }

        table.addRow({params.name, params.memoryIntensive ? "M" : "C",
                      best_freq.toString(), exp::Table::pct(static_saved),
                      exp::Table::pct(dyn_saved),
                      exp::Table::pct(dyn_saved - static_saved)});
    }
    table.print(std::cout);

    if (mem_count > 0) {
        std::cout << "\nmemory-intensive average (dynamic - static): "
                  << exp::Table::pct(mem_delta_sum / mem_count)
                  << "  (paper: +2.1% at the 10% threshold)\n";
    }
    return 0;
}
